// bench_oversub — quantifies the oversubscription convoy and the
// waiting-tier fix.
//
// The paper's evaluation runs on dedicated hardware (§5.1, free-range
// unbound threads but cores >= threads in the figures' left half); on
// multi-tenant hosts the preload shim routinely runs queue locks with
// far more runnable threads than CPUs, where a FIFO hand-off to a
// preempted busy-waiter costs a scheduler timeslice and throughput
// collapses by orders of magnitude (ROADMAP: minutes for 480k MCS
// hand-offs on 1 CPU). This bench sweeps threads = {1x, 4x, 16x} the
// host's logical CPUs under maximum contention and compares each
// queue lock's pure-spin baseline against its -yield / -park /
// -adaptive waiting tiers (core/waiting.hpp): the spin columns convoy
// as the multiplier grows; the park/adaptive columns stay within a
// small factor of the 1x row.
//
// Flags: --duration-ms --runs --multipliers=1,4,16 --csv --seed
//        --json=<path> (BENCH_*.json trajectory for CI perf-smoke)
//        --lock=<name>[,...] (default: mcs/clh/ticket spin vs park vs
//        adaptive, plus hemlock and its futex tier, plus pthread)
#include <cstdlib>

#include "bench_common.hpp"
#include "runtime/topology.hpp"

int main(int argc, char** argv) {
  using namespace hemlock;
  using namespace hemlock::bench;
  Options opts(argc, argv);
  // Rows come from --multipliers; the generic thread-cap flags would
  // be consumed (and ignored) by parse_figure_args, so refuse them
  // loudly like any other flag misuse.
  if (opts.has("max-threads") || opts.has("oversubscribe")) {
    std::fprintf(stderr,
                 "bench_oversub sweeps threads = k x CPUs; use "
                 "--multipliers=1,4,16 instead of --max-threads/"
                 "--oversubscribe\n");
    return 2;
  }

  FigureArgs args = parse_figure_args(opts, /*default_duration_ms=*/100);
  args.max_threads = 0;  // unused: rows come from --multipliers
  if (args.locks.empty()) {
    args.locks = {"mcs",         "mcs-yield",  "mcs-park", "mcs-adaptive",
                  "clh",         "clh-park",   "ticket",   "ticket-park",
                  "hemlock",     "hemlock-futex", "pthread"};
  }

  std::vector<std::uint32_t> multipliers;
  for (const auto& m : opts.get_string_list("multipliers")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(m.c_str(), &end, 10);
    if (end == m.c_str() || *end != '\0' || v == 0 || v > 1024) {
      std::fprintf(stderr, "bad --multipliers entry: %s\n", m.c_str());
      return 2;
    }
    multipliers.push_back(static_cast<std::uint32_t>(v));
  }
  if (opts.has("multipliers") && multipliers.empty()) {
    // Fail loudly like an empty --lock=: silently sweeping the
    // defaults would misreport what was measured.
    std::fprintf(stderr, "--multipliers requires at least one value\n");
    return 2;
  }
  if (multipliers.empty()) multipliers = {1, 4, 16};
  reject_unknown(opts);

  const std::uint32_t cpus = topology().logical_cpus;
  std::cout << "=== Oversubscription: MutexBench at threads = k x CPUs ===\n"
            << "(empty critical/non-critical sections; pure-spin queue "
               "locks convoy at scheduler speed past 1x, the yield/park/"
               "adaptive tiers do not — see core/waiting.hpp)\n"
            << host_banner() << "\n"
            << "duration=" << args.duration_ms << "ms runs=" << args.runs
            << "\n\n";

  BenchSeries series;
  for (const auto& name : args.locks) series.locks.push_back(name);

  for (const std::uint32_t mult : multipliers) {
    const std::uint32_t threads = std::max(1u, mult * cpus);
    MutexBenchConfig cfg;
    cfg.threads = threads;
    cfg.duration_ms = args.duration_ms;
    cfg.seed = args.seed;
    series.threads.push_back(threads);
    std::vector<std::optional<double>> row;
    for (const auto& name : args.locks) {
      row.push_back(named_value(name, cfg, args.runs));
    }
    series.values.push_back(std::move(row));
  }

  render_series("oversub", "msteps_per_sec", args, series);
  std::cout << "\n(Y values: aggregate throughput, M steps/sec. Rows are "
               "1x/4x/16x the host's " << cpus << " logical CPUs; compare "
               "each spin column's collapse against its -park sibling.)\n";
  return 0;
}
