// bench_fig2_max_contention — reproduces Figure 2 (and, with
// --oversubscribe, the same workload as Figures 4 and 6, which repeat
// it on 512-CPU SPARC and 256-CPU AMD hosts; see DESIGN.md's
// substitution table).
//
// Paper §5.1: "we report the median of 7 independent runs ... where
// the critical section is empty as well as the non-critical section,
// subjecting the lock to extreme contention. (At just one thread,
// this configuration also constitutes a useful benchmark for
// uncontended latency)."
//
// Expected shape (paper's observations): Ticket fastest at 1 thread;
// Ticket fades precipitously with threads; Hemlock slightly better
// than or equal to CLH/MCS; Hemlock (CTR) above Hemlock-.
//
// Flags: --duration-ms --runs --max-threads --oversubscribe --csv --seed
//        --json=<path> (BENCH_*.json trajectory for CI perf-smoke)
#include "bench_common.hpp"

int main(int argc, char** argv) {
  hemlock::Options opts(argc, argv);
  const auto args = hemlock::bench::parse_figure_args(opts);
  hemlock::bench::reject_unknown(opts);
  hemlock::bench::run_figure_bench(
      "fig2",
      "=== Figure 2: MutexBench, maximum contention ===",
      "(empty critical and non-critical sections; Figures 4/6 = same "
      "workload on SPARC/AMD — use --oversubscribe for thread counts "
      "past the CPU count)",
      /*cs_steps=*/0, /*ncs_steps=*/0, args);
  return 0;
}
