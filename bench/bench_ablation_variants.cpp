// bench_ablation_variants — ablation across the Hemlock design space.
//
// The paper motivates several optimizations and variants; this bench
// quantifies each one's contribution on the same MutexBench workloads
// so DESIGN.md's design-choice claims are backed by data:
//
//   * CTR waiting (Listing 2 vs Listing 1), including the FAA(0)
//     encoding (§2.1)
//   * Overlap (Listing 3, Appendix A) — the paper "opted to forgo"
//     it after observing "little observable performance benefit"
//   * Aggressive Hand-Over (Listing 4, Appendix B) — "the best
//     overall performance ... when lifecycle concerns permit"
//   * Optimized Hand-Over variants 1 and 2 (Listings 5-6) — the
//     lifecycle-safe fast hand-over forms
//
// Flags: --duration-ms --runs --max-threads --oversubscribe --csv
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace hemlock;

/// All Hemlock-family configurations under ablation.
using AblationTags =
    std::tuple<lock_tag<HemlockNaive>, lock_tag<Hemlock>,
               lock_tag<HemlockFaa>, lock_tag<HemlockOverlap>,
               lock_tag<HemlockAh>, lock_tag<HemlockOhv1>,
               lock_tag<HemlockOhv2>>;

}  // namespace

int main(int argc, char** argv) {
  using namespace hemlock::bench;
  Options opts(argc, argv);
  const auto args = parse_figure_args(opts);
  reject_unknown(opts);

  for (const bool moderate : {false, true}) {
    std::cout << "=== Hemlock variant ablation: "
              << (moderate ? "moderate" : "maximum") << " contention ===\n"
              << host_banner() << "\n\n";
    const auto sweep = figure_thread_sweep(args.max_threads);
    std::vector<std::string> headers{"threads"};
    for_each_lock_type<AblationTags>([&](auto tag) {
      using L = typename decltype(tag)::type;
      headers.emplace_back(lock_traits<L>::name);
    });
    Table table(headers);
    for (const std::uint32_t t : sweep) {
      MutexBenchConfig cfg;
      cfg.threads = t;
      cfg.duration_ms = args.duration_ms;
      cfg.cs_shared_prng_steps = moderate ? 5 : 0;
      cfg.ncs_max_prng_steps = moderate ? 400 : 0;
      std::vector<std::string> row{std::to_string(t)};
      for_each_lock_type<AblationTags>([&](auto tag) {
        using L = typename decltype(tag)::type;
        row.push_back(Table::fmt(mutexbench_median<L>(cfg, args.runs)));
      });
      table.add_row(std::move(row));
    }
    if (args.csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
    std::cout << "\n";
  }
  std::cout << "(M steps/sec. Expected: hemlock >= hemlock- everywhere; "
               "hemlock-ah best under contention — safe only with "
               "type-stable lock memory, Appendix B; ohv1/ohv2 close to "
               "ah without the lifecycle caveat.)\n";
  return 0;
}
