// bench_table2_ctr_offcore — regenerates Table 2: the impact of the
// CTR optimization on throughput and offcore (coherence) traffic.
//
// Paper §5.5, Oracle X5-2 at 32 threads, empty critical and
// non-critical sections:
//
//     Lock                 Rate   OffCore
//     MCS                  3.81   10.6
//     CLH                  3.82   11.1
//     Ticket Locks         2.66   45.9
//     Hemlock              4.48    6.81
//     Hemlock without CTR  3.62    7.92
//
// Rate (M lock-unlock pairs/sec) is measured live via MutexBench.
// OffCore (offcore accesses per lock-unlock pair) is modelled by the
// coherence simulator (src/coherence) because PMU counters are not
// available in this environment — see DESIGN.md's substitution table.
//
// Flags: --threads (default min(32, cpus)) --duration-ms --runs
//        --iters (sim iterations/thread) --protocol=mesif|mesi|moesi
//        --csv
#include <iostream>

#include "bench_common.hpp"
#include "coherence/sim_bench.hpp"
#include "runtime/topology.hpp"
#include "stats/perf_counters.hpp"

namespace {

using namespace hemlock;
using namespace hemlock::bench;

coherence::Protocol parse_protocol(const std::string& s) {
  if (s == "mesi") return coherence::Protocol::kMesi;
  if (s == "moesi") return coherence::Protocol::kMoesi;
  return coherence::Protocol::kMesif;  // the X5-2's protocol family
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const auto threads = static_cast<std::uint32_t>(opts.get_int(
      "threads", std::min<std::int64_t>(32, topology().logical_cpus)));
  const auto duration_ms = opts.get_int("duration-ms", 300);
  const int runs = static_cast<int>(opts.get_int("runs", 1));
  const auto iters =
      static_cast<std::uint32_t>(opts.get_int("iters", 300));
  const auto protocol = parse_protocol(opts.get_string("protocol", "mesif"));
  const bool csv = opts.has("csv");
  // Tolerate the common figure-bench flags from driver scripts.
  (void)opts.get_int("max-threads", 0);
  (void)opts.has("oversubscribe");
  (void)opts.get_int("seed", 0);
  reject_unknown(opts);

  std::cout << "=== Table 2: impact of CTR on throughput and offcore "
               "traffic ===\n"
            << host_banner() << "\n"
            << "threads=" << threads << " duration=" << duration_ms
            << "ms sim-protocol=" << coherence::protocol_name(protocol)
            << " sim-iters=" << iters << "/thread\n"
            << "(paper: X5-2 @ 32 threads; OffCore = "
               "offcore_requests.all_data_rd + demand_rfo per pair — here "
               "modelled by the coherence simulator)\n\n";

  // Rate column: live MutexBench at maximum contention. When the
  // kernel grants PMU access, also report live cache-misses per
  // lock-unlock pair (the generic cousin of the paper's offcore
  // counters); otherwise that column reads "n/a".
  MutexBenchConfig cfg;
  cfg.threads = threads;
  cfg.duration_ms = duration_ms;
  struct LiveRow {
    double rate;
    std::string misses_per_pair;
  };
  auto live = [&](auto tag) -> LiveRow {
    using L = typename decltype(tag)::type;
    MutexBenchResult metered{};
    const auto sample =
        sample_cache_traffic([&] { metered = run_mutexbench<L>(cfg); });
    Summary s;
    s.add(metered.msteps_per_sec());
    for (int r = 1; r < runs; ++r) {
      s.add(run_mutexbench<L>(cfg).msteps_per_sec());
    }
    if (!sample.available || metered.total_iterations == 0) {
      return {s.median(), "n/a"};
    }
    return {s.median(),
            Table::fmt(static_cast<double>(sample.misses) /
                           static_cast<double>(metered.total_iterations),
                       2)};
  };
  const LiveRow live_mcs = live(lock_tag<McsLock>{});
  const LiveRow live_clh = live(lock_tag<ClhLock>{});
  const LiveRow live_ticket = live(lock_tag<TicketLock>{});
  const LiveRow live_hemlock = live(lock_tag<Hemlock>{});
  const LiveRow live_naive = live(lock_tag<HemlockNaive>{});

  // OffCore column: coherence simulation.
  const auto sim = coherence::run_table2(protocol, threads, iters);

  Table table({"lock", "Rate (M pairs/s)", "OffCore/pair (sim)",
               "cache-miss/pair (pmu)", "paper Rate", "paper OffCore"});
  const LiveRow* lives[] = {&live_mcs, &live_clh, &live_ticket,
                            &live_hemlock, &live_naive};
  const double paper_rates[] = {3.81, 3.82, 2.66, 4.48, 3.62};
  for (std::size_t i = 0; i < sim.size(); ++i) {
    table.add_row({sim[i].name, Table::fmt(lives[i]->rate, 2),
                   Table::fmt(sim[i].offcore_sim, 2),
                   lives[i]->misses_per_pair,
                   Table::fmt(paper_rates[i], 2),
                   Table::fmt(sim[i].paper_offcore, 2)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nShape checks: Hemlock(CTR) rate > Hemlock- rate; "
               "Hemlock OffCore < Hemlock-; Ticket OffCore >> queue "
               "locks. (CLH-vs-Hemlock OffCore is a near-tie in the "
               "idealized model; see EXPERIMENTS.md.)\n";
  return 0;
}
