// bench_latency — google-benchmark microbenchmarks for the latency
// observations the figures make at T=1 (§5.1: "At 1 thread the
// benchmark measures the latency of uncontended acquire and release
// operations. Ticket Locks are the fastest, followed by Hemlock, CLH
// and MCS") and for the contended hand-over path (§2's atomic-op
// accounting: uncontended lock = SWAP, uncontended unlock = CAS for
// MCS/Hemlock, store for CLH/Ticket).
#include <benchmark/benchmark.h>

#include <thread>

#include "core/lock_registry.hpp"
#include "runtime/cacheline.hpp"

namespace {

using namespace hemlock;

template <typename L>
void BM_UncontendedLockUnlock(benchmark::State& state) {
  CacheAligned<L> lock;
  for (auto _ : state) {
    lock.value.lock();
    lock.value.unlock();
  }
  state.SetItemsProcessed(state.iterations());
}

template <typename L>
void BM_UncontendedTryLock(benchmark::State& state) {
  CacheAligned<L> lock;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lock.value.try_lock());
    lock.value.unlock();
  }
  state.SetItemsProcessed(state.iterations());
}

// Two-thread handover: measures the contended transfer path (the
// Grant protocol for Hemlock, queue hand-off for MCS/CLH). Thread
// count fixed at 2 via benchmark's threading support; both threads
// run the same loop so every acquisition is (usually) contended.
// The lock has static duration (one per instantiation): thread-safe
// to initialize, alive across benchmark repetitions, and type-stable
// — which also satisfies HemlockAh's Appendix-B lifetime requirement.
template <typename L>
void BM_ContendedPingPong(benchmark::State& state) {
  static CacheAligned<L> lock;
  for (auto _ : state) {
    lock.value.lock();
    lock.value.unlock();
  }
  state.SetItemsProcessed(state.iterations());
}

#define LATENCY_BENCHES(L)                                           \
  BENCHMARK_TEMPLATE(BM_UncontendedLockUnlock, L)->Name(            \
      std::string("uncontended/") + lock_traits<L>::name);          \
  BENCHMARK_TEMPLATE(BM_ContendedPingPong, L)                        \
      ->Name(std::string("pingpong2/") + lock_traits<L>::name)       \
      ->Threads(2)                                                   \
      ->UseRealTime();

}  // namespace

LATENCY_BENCHES(Hemlock)
LATENCY_BENCHES(HemlockNaive)
LATENCY_BENCHES(HemlockFaa)
LATENCY_BENCHES(HemlockAh)
LATENCY_BENCHES(HemlockOhv1)
LATENCY_BENCHES(HemlockOhv2)
LATENCY_BENCHES(McsLock)
LATENCY_BENCHES(McsK42Lock)
LATENCY_BENCHES(ClhLock)
LATENCY_BENCHES(TicketLock)
LATENCY_BENCHES(TasLock)
LATENCY_BENCHES(TtasLock)

BENCHMARK_TEMPLATE(BM_UncontendedTryLock, Hemlock)
    ->Name("uncontended-trylock/hemlock");
BENCHMARK_TEMPLATE(BM_UncontendedTryLock, McsLock)
    ->Name("uncontended-trylock/mcs");
BENCHMARK_TEMPLATE(BM_UncontendedTryLock, TicketLock)
    ->Name("uncontended-trylock/ticket");

BENCHMARK_MAIN();
