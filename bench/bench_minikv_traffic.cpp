// bench_minikv_traffic — mixed-traffic serving comparison: central-
// mutex DB vs the sharded epoch-read serving layer.
//
// Where Figure 8 shows the central-lock collapse on uniform
// readrandom, this bench sweeps the four serving scenarios
// (minikv/traffic.hpp: read-heavy, scan-heavy, hot-key, write-burst)
// across three backends built on the SAME storage engine:
//
//   central@<scenario>         DB<AnyLock>: one central mutex
//   sharded@<scenario>         ShardedDB: per-shard locks, Get()/Scan()
//                              lock-free under epoch reclamation
//   sharded-locked@<scenario>  ShardedDB with epoch_reads=false:
//                              same sharding, reads take the shard
//                              lock in shared mode — isolating "what
//                              does QSBR buy over a shared-mode lock"
//
// The shard/central lock algorithm is runtime-chosen (--lock=<name>,
// default hemlock). This bench also demonstrates the factory's
// runtime registration: it registers a std::shared_mutex-backed
// family ("std-shared-mutex") at startup, so
// --lock=std-shared-mutex measures a lock that is NOT in the
// compile-time roster through the identical AnyLock path.
//
// Flags: --duration-ms --runs --max-threads --oversubscribe --csv
//        --json=<path> --seed --lock=<name> --keys --shards --batch
//        --scenario=<name>[,...]
#include <cstdio>
#include <iostream>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "api/any_lock.hpp"
#include "api/factory.hpp"
#include "bench_common.hpp"
#include "minikv/db.hpp"
#include "minikv/db_bench.hpp"
#include "minikv/sharded_db.hpp"
#include "minikv/traffic.hpp"
#include "stats/telemetry.hpp"

namespace hemlock {

namespace {

/// The runtime-registration demo subject: the C++ standard library's
/// reader-writer mutex, absent from AllLockTags, registered with the
/// factory in main(). Its traits make it a first-class roster citizen
/// (Table-1 accounting, rwlock capability) without recompiling the
/// registry.
class StdSharedMutexLock {
 public:
  void lock() { m_.lock(); }
  void unlock() { m_.unlock(); }
  bool try_lock() { return m_.try_lock(); }
  void lock_shared() { m_.lock_shared(); }
  void unlock_shared() { m_.unlock_shared(); }
  bool try_lock_shared() { return m_.try_lock_shared(); }

 private:
  std::shared_mutex m_;
};

}  // namespace

template <>
struct lock_traits<StdSharedMutexLock> {
  static constexpr const char* name = "std-shared-mutex";
  static constexpr std::size_t lock_words =
      words_for(sizeof(std::shared_mutex));
  static constexpr std::size_t held_words = 0;
  static constexpr std::size_t wait_words = 0;
  static constexpr std::size_t thread_words = 0;
  static constexpr bool nontrivial_init = true;  // opaque pthread state
  static constexpr bool is_fifo = false;
  static constexpr bool has_trylock = true;
  static constexpr Spinning spinning = Spinning::kGlobal;
  /// Registered at run time by this bench, not part of the shim's
  /// vetted overlay set.
  static constexpr bool pthread_overlay_safe = false;
  static constexpr const char* waiting = "park";
};

}  // namespace hemlock

namespace {

using namespace hemlock;
using namespace hemlock::bench;

struct TrafficBenchConfig {
  std::string lock_name;
  std::uint64_t keys;
  std::size_t shards;
  std::size_t batch;
};

double traffic_median(minikv::KvBackend& kv,
                      const minikv::TrafficScenario& scenario,
                      std::uint32_t threads, const FigureArgs& args,
                      const TrafficBenchConfig& cfg) {
  minikv::TrafficConfig tc;
  tc.threads = threads;
  tc.duration_ms = args.duration_ms;
  tc.num_keys = cfg.keys;
  tc.batch_size = cfg.batch;
  tc.seed = args.seed;
  Summary s;
  for (int r = 0; r < args.runs; ++r) {
    s.add(minikv::run_traffic(kv, scenario, tc).mops_per_sec());
  }
  return s.median();
}

}  // namespace

int main(int argc, char** argv) {
  // Runtime registration happens BEFORE flag validation so
  // --lock=std-shared-mutex passes the factory check like any roster
  // name. Registered boxed: std::shared_mutex outweighs the compact
  // inline buffer, the same demotion the roster applies to Anderson.
  if (!LockFactory::register_lock_type<BoxedLock<StdSharedMutexLock>>()) {
    std::fprintf(stderr, "runtime lock registration failed\n");
    return 1;
  }

  Options opts(argc, argv);
  const auto args = parse_figure_args(opts);
  TrafficBenchConfig cfg;
  cfg.keys = static_cast<std::uint64_t>(opts.get_int("keys", 100000));
  cfg.shards = static_cast<std::size_t>(opts.get_int("shards", 16));
  cfg.batch = static_cast<std::size_t>(opts.get_int("batch", 32));
  auto scenario_names = opts.get_string_list("scenario");
  reject_unknown(opts);
  if (args.locks.size() > 1) {
    std::fprintf(stderr,
                 "this bench compares backends, not algorithms — pass at "
                 "most one --lock\n");
    return 2;
  }
  cfg.lock_name = args.locks.empty() ? "hemlock" : args.locks[0];

  std::vector<const minikv::TrafficScenario*> scenarios;
  if (scenario_names.empty()) {
    for (const auto& s : minikv::default_traffic_scenarios()) {
      scenarios.push_back(&s);
    }
  } else {
    for (const auto& name : scenario_names) {
      const auto* s = minikv::find_traffic_scenario(name);
      if (s == nullptr) {
        std::fprintf(stderr, "unknown scenario: %s (available:", name.c_str());
        for (const auto& known : minikv::default_traffic_scenarios()) {
          std::fprintf(stderr, " %.*s", static_cast<int>(known.name.size()),
                       known.name.data());
        }
        std::fprintf(stderr, ")\n");
        return 2;
      }
      scenarios.push_back(s);
    }
  }

  std::cout << "=== MiniKV mixed traffic: central mutex vs sharded "
               "epoch-read serving ===\n"
            << "(lock=" << cfg.lock_name << ", " << cfg.keys << " keys, "
            << cfg.shards << " shards, batches of " << cfg.batch << ")\n"
            << host_banner() << "\n"
            << "duration=" << args.duration_ms << "ms runs=" << args.runs
            << "\n\n";

  // One warmed instance per backend, shared across scenarios and
  // thread counts (the Figure-8 reuse protocol; writes stay inside
  // the pre-filled keyspace, so the working set is stationary). Each
  // backend carries a telemetry name — the sharded backends share one
  // handle across their shard locks, so the per-lock table reports
  // one row per backend, not one per shard.
  minikv::DB<AnyLock> central(minikv::DbOptions{},
                              std::string_view(cfg.lock_name),
                              std::string_view("minikv:central"));
  minikv::ShardedDbOptions sharded_opts;
  sharded_opts.num_shards = cfg.shards;
  minikv::ShardedDB<> sharded(sharded_opts, std::string_view(cfg.lock_name),
                              std::string_view("minikv:sharded"));
  minikv::ShardedDbOptions locked_opts = sharded_opts;
  locked_opts.epoch_reads = false;
  minikv::ShardedDB<> sharded_locked(
      locked_opts, std::string_view(cfg.lock_name),
      std::string_view("minikv:sharded-locked"));

  minikv::CentralBackend<AnyLock> central_kv(central);
  minikv::ShardedBackend<> sharded_kv(sharded);
  minikv::ShardedBackend<> sharded_locked_kv(sharded_locked);
  const std::pair<const char*, minikv::KvBackend*> backends[] = {
      {"central", &central_kv},
      {"sharded", &sharded_kv},
      {"sharded-locked", &sharded_locked_kv},
  };
  for (const auto& [name, kv] : backends) {
    (void)name;
    minikv::fill_backend(*kv, cfg.keys, 100);
  }

  BenchSeries series;
  for (const auto& [name, kv] : backends) {
    (void)kv;
    for (const auto* scenario : scenarios) {
      series.locks.push_back(std::string(name) + "@" +
                             std::string(scenario->name));
    }
  }
  for (const std::uint32_t t : figure_thread_sweep(args.max_threads)) {
    series.threads.push_back(t);
    std::vector<std::optional<double>> row;
    for (const auto& [name, kv] : backends) {
      (void)name;
      for (const auto* scenario : scenarios) {
        row.push_back(guarded_value(cfg.lock_name, t, [&] {
          return traffic_median(*kv, *scenario, t, args, cfg);
        }));
      }
    }
    series.values.push_back(std::move(row));
  }
  // The per-lock counters the sweep accumulated ride along in the
  // trajectory file ("telemetry" block, schema hemlock-telemetry-v1);
  // bench_compare.py reads only "series" and ignores it.
  render_series("minikv_traffic", "mops_per_sec", args, series,
                telemetry::to_json(telemetry::collect()));

  const auto st = sharded.stats();
  std::cout << "\n(Y values: millions of client operations per second; a "
               "scan counts as one request.)\n"
            << "(sharded backend: " << st.epoch_gets << " epoch gets, "
            << st.flushes << " flushes, " << st.compactions
            << " compactions; reclamation: " << st.reclaim.freed
            << " freed, " << st.reclaim.pending << " pending, "
            << st.reclaim.advance_blocked << " blocked advances)\n";
  return 0;
}
