// bench_rwlock — read-ratio sweep for the reader-writer family.
//
// T threads hammer one central lock; each iteration is a read with
// probability r (shared acquire, snapshot two shared words) or a
// write with probability 1-r (exclusive acquire, advance both words).
// Every algorithm runs through the type-erased shared surface
// (AnyLock::lock_shared), so exclusive-only algorithms are measured
// as the *erased exclusive baseline* — their lock_shared degrades to
// lock() — and the rwlock family's win at high read ratios is the
// direct payoff of admitting concurrent readers. This is the
// acceptance check for the rwlock subsystem: at read ratios >= 0.9
// the rwlock curves must beat the exclusive baseline once readers
// outnumber cores' worth of serialization (>= 4 threads).
//
// Flags: --duration-ms --runs --max-threads --csv --seed
//        --read-ratios=50,90,99 (percent; one table per ratio)
//        --json=<path> (BENCH_*.json trajectory for CI perf-smoke;
//        series are named "<lock>@r<pct>")
//        --lock=<name>[,...] (default: the rwlock tiers, the compact
//        variant, and the hemlock/pthread exclusive baselines)
#include <cstdlib>

#include "bench_common.hpp"
#include "runtime/barrier.hpp"
#include "runtime/prng.hpp"

namespace {

using namespace hemlock;
using namespace hemlock::bench;

/// One rwbench run: aggregate iterations/sec (M steps/sec) across
/// `threads` free-range threads at `read_permille` reads.
double rwbench_msteps(const std::string& lock_name, std::uint32_t threads,
                      std::int64_t duration_ms, std::uint32_t read_permille,
                      std::uint64_t seed) {
  struct Shared {
    CacheAligned<AnyLock> lock;
    CacheAligned<std::atomic<bool>> stop{false};
    // Written under the exclusive mode only; read under shared holds.
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    SpinBarrier barrier;
    Shared(const std::string& name, std::uint32_t parties)
        : lock(name), barrier(parties) {}
  };
  auto shared = std::make_unique<Shared>(lock_name, threads + 1);

  std::vector<std::uint64_t> counts(threads, 0);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      (void)self();
      Xoshiro256 prng(seed + 0x9E37 * (t + 1));
      [[maybe_unused]] volatile std::uint64_t sink = 0;
      std::uint64_t iters = 0;
      shared->barrier.arrive_and_wait();
      while (!shared->stop.value.load(std::memory_order_relaxed)) {
        if (prng.below(1000) < read_permille) {
          shared->lock.value.lock_shared();
          sink = shared->a + shared->b;
          shared->lock.value.unlock_shared();
        } else {
          shared->lock.value.lock();
          ++shared->a;
          ++shared->b;
          shared->lock.value.unlock();
        }
        ++iters;
      }
      counts[t] = iters;
      shared->barrier.arrive_and_wait();
    });
  }

  shared->barrier.arrive_and_wait();
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  shared->stop.value.store(true, std::memory_order_relaxed);
  shared->barrier.arrive_and_wait();
  const std::int64_t elapsed = timer.elapsed_ns();
  for (auto& w : workers) w.join();

  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  return ops_per_sec(total, elapsed) / 1e6;
}

/// Median of `runs` runs (the figure benches' protocol).
std::optional<double> rwbench_median(const std::string& lock_name,
                                     std::uint32_t threads,
                                     const FigureArgs& args,
                                     std::uint32_t read_permille) {
  return guarded_value(lock_name, threads, [&] {
    std::vector<double> vals;
    vals.reserve(static_cast<std::size_t>(args.runs));
    for (int r = 0; r < args.runs; ++r) {
      vals.push_back(rwbench_msteps(lock_name, threads, args.duration_ms,
                                    read_permille,
                                    args.seed + static_cast<std::uint64_t>(r)));
    }
    std::sort(vals.begin(), vals.end());
    return vals[vals.size() / 2];
  });
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  FigureArgs args = parse_figure_args(opts, /*default_duration_ms=*/100);

  std::vector<std::uint32_t> ratios_pct;
  for (const auto& r : opts.get_string_list("read-ratios")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(r.c_str(), &end, 10);
    if (end == r.c_str() || *end != '\0' || v > 100) {
      std::fprintf(stderr, "bad --read-ratios entry (want 0..100): %s\n",
                   r.c_str());
      return 2;
    }
    ratios_pct.push_back(static_cast<std::uint32_t>(v));
  }
  if (opts.has("read-ratios") && ratios_pct.empty()) {
    std::fprintf(stderr, "--read-ratios requires at least one value\n");
    return 2;
  }
  if (ratios_pct.empty()) ratios_pct = {50, 90, 99};
  reject_unknown(opts);

  if (args.locks.empty()) {
    args.locks = {"rwlock",         "rwlock-park", "rwlock-adaptive",
                  "rwlock-compact", "hemlock",     "pthread"};
  }

  std::cout << "=== RwBench: central lock, read-ratio sweep ===\n"
            << "(reads take the shared mode; exclusive-only algorithms are "
               "the erased baseline — their lock_shared degrades to "
               "lock())\n"
            << host_banner() << "\n"
            << "duration=" << args.duration_ms << "ms runs=" << args.runs
            << "\n\n";

  // One table per read ratio; one JSON series per (lock, ratio) so the
  // perf gate keys on both.
  BenchSeries series;
  for (const std::uint32_t pct : ratios_pct) {
    for (const auto& name : args.locks) {
      series.locks.push_back(name + "@r" + std::to_string(pct));
    }
  }

  const auto sweep = figure_thread_sweep(args.max_threads);
  for (const std::uint32_t t : sweep) series.threads.push_back(t);
  series.values.assign(sweep.size(), {});

  for (std::size_t ri = 0; ri < ratios_pct.size(); ++ri) {
    const std::uint32_t pct = ratios_pct[ri];
    Table table([&] {
      std::vector<std::string> headers{"threads"};
      for (const auto& name : args.locks) headers.push_back(name);
      return headers;
    }());
    for (std::size_t row = 0; row < sweep.size(); ++row) {
      std::vector<std::string> cells{std::to_string(sweep[row])};
      for (const auto& name : args.locks) {
        const auto v = rwbench_median(name, sweep[row], args, pct * 10);
        series.values[row].push_back(v);
        cells.push_back(value_cell(v));
      }
      table.add_row(std::move(cells));
    }
    std::cout << "--- read ratio " << pct << "% ---\n";
    if (args.csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
    std::cout << "\n";
  }

  if (!args.json_path.empty()) {
    if (!write_bench_json(args.json_path, "rwlock_readratio",
                          "msteps_per_sec", args.duration_ms, args.runs,
                          series)) {
      return 1;
    }
    std::cout << "(JSON trajectory written to " << args.json_path << ")\n";
  }
  std::cout << "(Y values: aggregate lock+unlock iterations, M steps/sec; "
               "compare the rwlock columns against the hemlock/pthread "
               "exclusive baselines as the read ratio grows.)\n";
  return 0;
}
