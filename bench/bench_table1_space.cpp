// bench_table1_space — regenerates Table 1 (space usage) from the
// live lock_traits metadata plus compile-time sizeof ground truth.
//
// Paper Table 1 (values in words; E = queue element size):
//     Lock    Held  Wait  Thread  Init
//   MCS     2     E     E     0    —
//   CLH     2+E   0     E     0    dummy element
//   Ticket  2     0     0     0    —
//   Hemlock 1     0     0     1    —
//
// Our MCS/CLH queue elements are padded to a cache line (8 words) for
// a fair comparison, exactly as the paper's implementation does
// (§2.3: "we also elected to align and pad the MCS and CLH queue
// nodes ... raising the size of E to a cache line").
#include <iostream>

#include "core/lock_registry.hpp"
#include "harness/options.hpp"
#include "harness/table.hpp"
#include "locks/lock_traits.hpp"

int main(int argc, char** argv) {
  using namespace hemlock;
  Options opts(argc, argv);
  const bool csv = opts.has("csv");
  const bool all = opts.has("all");  // include the extended roster
  // Accept (and ignore) the common figure-bench flags so driver
  // scripts can pass one flag set to every bench binary.
  (void)opts.get_int("duration-ms", 0);
  (void)opts.get_int("runs", 0);
  (void)opts.get_int("max-threads", 0);
  (void)opts.has("oversubscribe");
  const auto unknown = opts.unconsumed();
  if (!unknown.empty()) {
    std::cerr << "unknown option(s)\n";
    return 2;
  }

  std::cout << "=== Table 1: space usage (words; E = padded queue element = "
            << sizeof(McsNode) / sizeof(void*) << " words) ===\n\n";

  Table table({"lock", "lock body", "per held", "per wait", "per thread",
               "nontrivial init", "sizeof(bytes)"});
  auto add = [&](auto tag) {
    using L = typename decltype(tag)::type;
    using T = lock_traits<L>;
    table.add_row({T::name, std::to_string(T::lock_words),
                   std::to_string(T::held_words),
                   std::to_string(T::wait_words),
                   std::to_string(T::thread_words),
                   T::nontrivial_init ? "yes" : "no",
                   std::to_string(sizeof(L))});
  };
  if (all) {
    for_each_lock_type<AllLockTags>(add);
  } else {
    // The paper's Table 1 rows: MCS, CLH, Ticket, Hemlock.
    add(lock_tag<McsLock>{});
    add(lock_tag<ClhLock>{});
    add(lock_tag<TicketLock>{});
    add(lock_tag<Hemlock>{});
  }

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nGround truth: sizeof(Hemlock) = " << sizeof(Hemlock)
            << " bytes = " << sizeof(Hemlock) / sizeof(void*)
            << " word; per-thread state = 1 Grant word (sequestered on "
               "its own cache line per §2.3).\n"
            << "(paper Table 1: MCS 2/E/E/0, CLH 2+E/0/E/0 + init, "
               "Ticket 2/0/0/0, Hemlock 1/0/0/1)\n";
  return 0;
}
