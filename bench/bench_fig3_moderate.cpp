// bench_fig3_moderate — reproduces Figure 3 (and the Figures 5/7
// SPARC/AMD repeats; DESIGN.md substitution table).
//
// Paper §5.1: "we configure the benchmark so the non-critical section
// generates a uniformly distributed random value in [0-400) and steps
// a thread-local C++ std::mt19937 random number generator (PRNG) that
// many steps, admitting potential positive scalability. The critical
// section advances a shared random number generator 5 steps."
//
// Expected shape: Ticket does well at low thread counts, then fades;
// Hemlock outperforms both MCS and CLH.
//
// Flags: --duration-ms --runs --max-threads --oversubscribe --csv --seed
#include "bench_common.hpp"

int main(int argc, char** argv) {
  hemlock::Options opts(argc, argv);
  const auto args = hemlock::bench::parse_figure_args(opts);
  hemlock::bench::reject_unknown(opts);
  hemlock::bench::run_figure_bench(
      "fig3",
      "=== Figure 3: MutexBench, moderate contention ===",
      "(CS: 5 steps of a shared std::mt19937; NCS: uniform [0,400) "
      "steps of a thread-local std::mt19937; Figures 5/7 = same "
      "workload on SPARC/AMD — use --oversubscribe)",
      /*cs_steps=*/5, /*ncs_steps=*/400, args);
  return 0;
}
