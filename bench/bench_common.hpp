// bench_common.hpp — shared scaffolding for the figure benches.
//
// Every figure bench prints the same series the paper plots: one row
// per thread count, one column per lock algorithm, values in M
// steps/sec (median of --runs runs). Durations default short so the
// whole bench suite completes in minutes; pass --duration-ms=10000
// --runs=7 to reproduce the paper's exact protocol.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/lock_registry.hpp"
#include "harness/mutexbench.hpp"
#include "harness/options.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"

namespace hemlock::bench {

/// Shared CLI knobs for figure benches.
struct FigureArgs {
  std::int64_t duration_ms;
  int runs;
  std::uint32_t max_threads;
  bool csv;
  std::uint64_t seed;
};

/// Parse the common options; exits on unknown flags.
inline FigureArgs parse_figure_args(const Options& opts) {
  FigureArgs a;
  a.duration_ms = opts.get_int("duration-ms", 200);
  a.runs = static_cast<int>(opts.get_int("runs", 1));
  const bool oversubscribe = opts.has("oversubscribe");
  a.max_threads = static_cast<std::uint32_t>(opts.get_int(
      "max-threads", default_max_threads(oversubscribe)));
  a.csv = opts.has("csv");
  a.seed = static_cast<std::uint64_t>(opts.get_int("seed", 0x5EED));
  return a;
}

/// Reject unrecognized flags loudly.
inline void reject_unknown(const Options& opts) {
  const auto unknown = opts.unconsumed();
  if (!unknown.empty()) {
    std::fprintf(stderr, "unknown option(s):");
    for (const auto& u : unknown) std::fprintf(stderr, " --%s", u.c_str());
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
}

/// Run a MutexBench sweep over the paper's five figure algorithms and
/// print the table. `cs_steps`/`ncs_steps` select the contention
/// regime (Figure 2: 0/0; Figure 3: 5/400).
inline void run_figure_bench(const char* title, const char* note,
                             std::uint32_t cs_steps, std::uint32_t ncs_steps,
                             const FigureArgs& args) {
  std::cout << title << "\n" << note << "\n" << host_banner() << "\n"
            << "duration=" << args.duration_ms << "ms runs=" << args.runs
            << " (paper: 10s, median of 7)\n\n";

  const auto sweep = figure_thread_sweep(args.max_threads);
  std::vector<std::string> headers{"threads"};
  for_each_lock_type<PaperFigureLockTags>([&](auto tag) {
    using L = typename decltype(tag)::type;
    headers.emplace_back(lock_traits<L>::name);
  });
  Table table(headers);

  for (const std::uint32_t t : sweep) {
    MutexBenchConfig cfg;
    cfg.threads = t;
    cfg.duration_ms = args.duration_ms;
    cfg.cs_shared_prng_steps = cs_steps;
    cfg.ncs_max_prng_steps = ncs_steps;
    cfg.seed = args.seed;
    std::vector<std::string> row{std::to_string(t)};
    for_each_lock_type<PaperFigureLockTags>([&](auto tag) {
      using L = typename decltype(tag)::type;
      row.push_back(Table::fmt(mutexbench_median<L>(cfg, args.runs)));
    });
    table.add_row(std::move(row));
  }

  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\n(Y values: aggregate throughput, M steps/sec — the "
               "paper's figure axis.)\n";
}

}  // namespace hemlock::bench
