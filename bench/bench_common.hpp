// bench_common.hpp — shared scaffolding for the figure benches.
//
// Every figure bench prints the same series the paper plots: one row
// per thread count, one column per lock algorithm, values in M
// steps/sec (median of --runs runs). Durations default short so the
// whole bench suite completes in minutes; pass --duration-ms=10000
// --runs=7 to reproduce the paper's exact protocol.
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "api/factory.hpp"
#include "core/lock_registry.hpp"
#include "harness/mutexbench.hpp"
#include "harness/options.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "runtime/topology.hpp"

namespace hemlock::bench {

/// Shared CLI knobs for figure benches.
struct FigureArgs {
  std::int64_t duration_ms;
  int runs;
  std::uint32_t max_threads;
  bool csv;
  std::uint64_t seed;
  /// --json=<path>: additionally write the sweep as a BENCH_*.json
  /// trajectory file (schema "hemlock-bench-v1"); empty = off. CI's
  /// perf-smoke job uploads these as artifacts so the bench
  /// trajectory accumulates across PRs.
  std::string json_path;
  /// --lock=<name>[,<name>...]: run these factory algorithms through
  /// the runtime AnyLock path instead of the default compile-time
  /// figure roster. Empty = paper-fidelity templated sweep.
  std::vector<std::string> locks;
};

/// A figure sweep in machine-readable form: one row per thread count,
/// one column per lock; absent cells (e.g. Anderson past its
/// waiting-array capacity) are nullopt and serialize as JSON null.
struct BenchSeries {
  std::vector<std::string> locks;      ///< column names
  std::vector<std::uint32_t> threads;  ///< row keys
  std::vector<std::vector<std::optional<double>>> values;  ///< [row][col]
};

/// Minimal JSON string escaping (quotes/backslashes/control chars) —
/// enough for lock names and CPU model strings.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Write the sweep as a BENCH_*.json trajectory file. Schema
/// "hemlock-bench-v1": bench id, unit, host, budget, then one series
/// per lock with {threads, value} points. `extra_json`, when
/// non-empty, is a pre-serialized JSON value emitted as a top-level
/// "telemetry" member (benches pass telemetry::to_json() through
/// here); consumers keyed on "series" — bench_compare.py — ignore it
/// by construction. Returns false (with a stderr report) when the
/// file cannot be written; callers exit non-zero so CI fails loudly
/// on malformed/unwritable output.
inline bool write_bench_json(const std::string& path,
                             const std::string& bench_id,
                             const std::string& unit,
                             std::int64_t duration_ms, int runs,
                             const BenchSeries& series,
                             const std::string& extra_json = {}) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const Topology& topo = topology();
  os << "{\n"
     << "  \"schema\": \"hemlock-bench-v1\",\n"
     << "  \"bench\": \"" << json_escape(bench_id) << "\",\n"
     << "  \"unit\": \"" << json_escape(unit) << "\",\n"
     << "  \"host\": {\"logical_cpus\": " << topo.logical_cpus
     << ", \"model\": \"" << json_escape(topo.model_name) << "\"},\n"
     << "  \"duration_ms\": " << duration_ms << ",\n"
     << "  \"runs\": " << runs << ",\n"
     << "  \"series\": [";
  for (std::size_t c = 0; c < series.locks.size(); ++c) {
    os << (c == 0 ? "\n" : ",\n");
    os << "    {\"lock\": \"" << json_escape(series.locks[c])
       << "\", \"points\": [";
    for (std::size_t r = 0; r < series.threads.size(); ++r) {
      os << (r == 0 ? "" : ", ");
      os << "{\"threads\": " << series.threads[r] << ", \"value\": ";
      if (series.values[r][c].has_value()) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6g", *series.values[r][c]);
        os << buf;
      } else {
        os << "null";
      }
      os << "}";
    }
    os << "]}";
  }
  os << "\n  ]";
  if (!extra_json.empty()) {
    os << ",\n  \"telemetry\": " << extra_json;
  }
  os << "\n}\n";
  os.flush();
  if (!os) {
    std::fprintf(stderr, "write to %s failed\n", path.c_str());
    return false;
  }
  return true;
}

/// Validate --lock names against the factory; exits (listing the
/// roster) on unknown names so typos fail loudly like other flags.
inline void validate_lock_names(const std::vector<std::string>& locks) {
  const auto& factory = LockFactory::instance();
  bool ok = true;
  for (const auto& name : locks) {
    if (factory.find(name) == nullptr) {
      std::fprintf(stderr, "unknown lock algorithm: %s\n", name.c_str());
      ok = false;
    }
  }
  if (!ok) {
    std::fprintf(stderr, "available algorithms:");
    for (const auto name : factory.names()) {
      std::fprintf(stderr, " %.*s", static_cast<int>(name.size()),
                   name.data());
    }
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
}

/// Parse the common options; exits on unknown flags.
inline FigureArgs parse_figure_args(const Options& opts,
                                    int default_duration_ms = 200) {
  FigureArgs a;
  a.duration_ms = opts.get_int("duration-ms", default_duration_ms);
  a.runs = static_cast<int>(opts.get_int("runs", 1));
  const bool oversubscribe = opts.has("oversubscribe");
  a.max_threads = static_cast<std::uint32_t>(opts.get_int(
      "max-threads", default_max_threads(oversubscribe)));
  a.csv = opts.has("csv");
  a.seed = static_cast<std::uint64_t>(opts.get_int("seed", 0x5EED));
  a.json_path = opts.get_string("json", "");
  a.locks = opts.get_string_list("lock");
  if (opts.has("lock") && a.locks.empty()) {
    // Fail loudly, like unknown names: a bare/empty --lock= silently
    // running the default roster would misreport what was measured.
    std::fprintf(stderr, "--lock requires at least one algorithm name\n");
    std::exit(2);
  }
  validate_lock_names(a.locks);
  return a;
}

/// Table headers for a figure sweep: "threads" plus either the
/// compile-time figure roster or the --lock names. The single source
/// for the default-vs-named column logic across the figure benches.
inline std::vector<std::string> figure_lock_headers(const FigureArgs& args) {
  std::vector<std::string> headers{"threads"};
  if (args.locks.empty()) {
    for_each_lock_type<PaperFigureLockTags>([&](auto tag) {
      using L = typename decltype(tag)::type;
      headers.emplace_back(lock_traits<L>::name);
    });
  } else {
    for (const auto& name : args.locks) headers.push_back(name);
  }
  return headers;
}

/// True when a factory-named algorithm can run at this thread count
/// (Anderson's waiting array bounds it; everything else is
/// unbounded). The capacity rule lives here, once, for every
/// named-sweep bench.
inline bool fits_thread_capacity(const std::string& name,
                                 std::uint32_t threads) {
  const LockInfo* info = LockFactory::instance().info(name);
  return info->max_threads == 0 || threads <= info->max_threads;
}

/// One measurement for a factory-named algorithm: nullopt when the
/// algorithm cannot run at this thread count, else the value from
/// `measure`.
template <typename MeasureFn>
std::optional<double> guarded_value(const std::string& name,
                                    std::uint32_t threads,
                                    MeasureFn&& measure) {
  if (!fits_thread_capacity(name, threads)) return std::nullopt;
  return measure();
}

/// The table rendering of a guarded measurement ("-" for absent).
inline std::string value_cell(const std::optional<double>& v) {
  return v.has_value() ? Table::fmt(*v) : "-";
}

/// String-cell compatibility wrapper over the same capacity rule.
template <typename MeasureFn>
std::string guarded_cell(const std::string& name, std::uint32_t threads,
                         MeasureFn&& measure) {
  if (!fits_thread_capacity(name, threads)) return "-";
  return measure();
}

/// MutexBench throughput for a factory-named algorithm.
inline std::optional<double> named_value(const std::string& name,
                                         const MutexBenchConfig& cfg,
                                         int runs) {
  return guarded_value(name, cfg.threads, [&] {
    return mutexbench_median_named(name, cfg, runs);
  });
}

/// Reject unrecognized flags loudly.
inline void reject_unknown(const Options& opts) {
  const auto unknown = opts.unconsumed();
  if (!unknown.empty()) {
    std::fprintf(stderr, "unknown option(s):");
    for (const auto& u : unknown) std::fprintf(stderr, " --%s", u.c_str());
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
}

/// Render a collected sweep: aligned table (or CSV), plus the
/// --json trajectory file when requested. Exits non-zero when the
/// JSON file cannot be written, so CI perf-smoke fails loudly.
/// `extra_json` rides into the trajectory file as its "telemetry"
/// member (see write_bench_json).
inline void render_series(const char* bench_id, const char* unit,
                          const FigureArgs& args, const BenchSeries& series,
                          const std::string& extra_json = {}) {
  Table table([&] {
    std::vector<std::string> headers{"threads"};
    headers.insert(headers.end(), series.locks.begin(), series.locks.end());
    return headers;
  }());
  for (std::size_t r = 0; r < series.threads.size(); ++r) {
    std::vector<std::string> row{std::to_string(series.threads[r])};
    for (const auto& v : series.values[r]) row.push_back(value_cell(v));
    table.add_row(std::move(row));
  }
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  if (!args.json_path.empty()) {
    if (!write_bench_json(args.json_path, bench_id, unit, args.duration_ms,
                          args.runs, series, extra_json)) {
      std::exit(1);
    }
    std::cout << "\n(JSON trajectory written to " << args.json_path << ")\n";
  }
}

/// Run a MutexBench sweep and print the table. `cs_steps`/`ncs_steps`
/// select the contention regime (Figure 2: 0/0; Figure 3: 5/400).
/// Default: the paper's five figure algorithms via the templated
/// (zero-dispatch) path. With --lock=<names>: the named factory
/// algorithms via the runtime AnyLock path — any roster member,
/// chosen at run time, exactly like the paper's LD_PRELOAD protocol.
inline void run_figure_bench(const char* bench_id, const char* title,
                             const char* note, std::uint32_t cs_steps,
                             std::uint32_t ncs_steps,
                             const FigureArgs& args) {
  std::cout << title << "\n" << note << "\n" << host_banner() << "\n"
            << "duration=" << args.duration_ms << "ms runs=" << args.runs
            << " (paper: 10s, median of 7)\n\n";

  BenchSeries series;
  const auto headers = figure_lock_headers(args);
  series.locks.assign(headers.begin() + 1, headers.end());

  for (const std::uint32_t t : figure_thread_sweep(args.max_threads)) {
    MutexBenchConfig cfg;
    cfg.threads = t;
    cfg.duration_ms = args.duration_ms;
    cfg.cs_shared_prng_steps = cs_steps;
    cfg.ncs_max_prng_steps = ncs_steps;
    cfg.seed = args.seed;
    series.threads.push_back(t);
    std::vector<std::optional<double>> row;
    if (args.locks.empty()) {
      for_each_lock_type<PaperFigureLockTags>([&](auto tag) {
        using L = typename decltype(tag)::type;
        row.emplace_back(mutexbench_median<L>(cfg, args.runs));
      });
    } else {
      for (const auto& name : args.locks) {
        row.push_back(named_value(name, cfg, args.runs));
      }
    }
    series.values.push_back(std::move(row));
  }

  render_series(bench_id, "msteps_per_sec", args, series);
  std::cout << "\n(Y values: aggregate throughput, M steps/sec — the "
               "paper's figure axis.)\n";
}

}  // namespace hemlock::bench
