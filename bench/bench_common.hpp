// bench_common.hpp — shared scaffolding for the figure benches.
//
// Every figure bench prints the same series the paper plots: one row
// per thread count, one column per lock algorithm, values in M
// steps/sec (median of --runs runs). Durations default short so the
// whole bench suite completes in minutes; pass --duration-ms=10000
// --runs=7 to reproduce the paper's exact protocol.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "api/factory.hpp"
#include "core/lock_registry.hpp"
#include "harness/mutexbench.hpp"
#include "harness/options.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"

namespace hemlock::bench {

/// Shared CLI knobs for figure benches.
struct FigureArgs {
  std::int64_t duration_ms;
  int runs;
  std::uint32_t max_threads;
  bool csv;
  std::uint64_t seed;
  /// --lock=<name>[,<name>...]: run these factory algorithms through
  /// the runtime AnyLock path instead of the default compile-time
  /// figure roster. Empty = paper-fidelity templated sweep.
  std::vector<std::string> locks;
};

/// Validate --lock names against the factory; exits (listing the
/// roster) on unknown names so typos fail loudly like other flags.
inline void validate_lock_names(const std::vector<std::string>& locks) {
  const auto& factory = LockFactory::instance();
  bool ok = true;
  for (const auto& name : locks) {
    if (factory.find(name) == nullptr) {
      std::fprintf(stderr, "unknown lock algorithm: %s\n", name.c_str());
      ok = false;
    }
  }
  if (!ok) {
    std::fprintf(stderr, "available algorithms:");
    for (const auto name : factory.names()) {
      std::fprintf(stderr, " %.*s", static_cast<int>(name.size()),
                   name.data());
    }
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
}

/// Parse the common options; exits on unknown flags.
inline FigureArgs parse_figure_args(const Options& opts) {
  FigureArgs a;
  a.duration_ms = opts.get_int("duration-ms", 200);
  a.runs = static_cast<int>(opts.get_int("runs", 1));
  const bool oversubscribe = opts.has("oversubscribe");
  a.max_threads = static_cast<std::uint32_t>(opts.get_int(
      "max-threads", default_max_threads(oversubscribe)));
  a.csv = opts.has("csv");
  a.seed = static_cast<std::uint64_t>(opts.get_int("seed", 0x5EED));
  a.locks = opts.get_string_list("lock");
  if (opts.has("lock") && a.locks.empty()) {
    // Fail loudly, like unknown names: a bare/empty --lock= silently
    // running the default roster would misreport what was measured.
    std::fprintf(stderr, "--lock requires at least one algorithm name\n");
    std::exit(2);
  }
  validate_lock_names(a.locks);
  return a;
}

/// Table headers for a figure sweep: "threads" plus either the
/// compile-time figure roster or the --lock names. The single source
/// for the default-vs-named column logic across the figure benches.
inline std::vector<std::string> figure_lock_headers(const FigureArgs& args) {
  std::vector<std::string> headers{"threads"};
  if (args.locks.empty()) {
    for_each_lock_type<PaperFigureLockTags>([&](auto tag) {
      using L = typename decltype(tag)::type;
      headers.emplace_back(lock_traits<L>::name);
    });
  } else {
    for (const auto& name : args.locks) headers.push_back(name);
  }
  return headers;
}

/// One table cell for a factory-named algorithm: "-" when the
/// algorithm cannot run at this thread count (Anderson past its
/// waiting-array capacity), else the formatted value from `measure`.
/// The capacity rule lives here, once, for every named-sweep bench.
template <typename MeasureFn>
std::string guarded_cell(const std::string& name, std::uint32_t threads,
                         MeasureFn&& measure) {
  const LockInfo* info = LockFactory::instance().info(name);
  if (info->max_threads != 0 && threads > info->max_threads) return "-";
  return measure();
}

/// MutexBench throughput cell for a factory-named algorithm.
inline std::string named_cell(const std::string& name,
                              const MutexBenchConfig& cfg, int runs) {
  return guarded_cell(name, cfg.threads, [&] {
    return Table::fmt(mutexbench_median_named(name, cfg, runs));
  });
}

/// Reject unrecognized flags loudly.
inline void reject_unknown(const Options& opts) {
  const auto unknown = opts.unconsumed();
  if (!unknown.empty()) {
    std::fprintf(stderr, "unknown option(s):");
    for (const auto& u : unknown) std::fprintf(stderr, " --%s", u.c_str());
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
}

/// Run a MutexBench sweep and print the table. `cs_steps`/`ncs_steps`
/// select the contention regime (Figure 2: 0/0; Figure 3: 5/400).
/// Default: the paper's five figure algorithms via the templated
/// (zero-dispatch) path. With --lock=<names>: the named factory
/// algorithms via the runtime AnyLock path — any roster member,
/// chosen at run time, exactly like the paper's LD_PRELOAD protocol.
inline void run_figure_bench(const char* title, const char* note,
                             std::uint32_t cs_steps, std::uint32_t ncs_steps,
                             const FigureArgs& args) {
  std::cout << title << "\n" << note << "\n" << host_banner() << "\n"
            << "duration=" << args.duration_ms << "ms runs=" << args.runs
            << " (paper: 10s, median of 7)\n\n";

  const auto sweep = figure_thread_sweep(args.max_threads);
  Table table(figure_lock_headers(args));

  for (const std::uint32_t t : sweep) {
    MutexBenchConfig cfg;
    cfg.threads = t;
    cfg.duration_ms = args.duration_ms;
    cfg.cs_shared_prng_steps = cs_steps;
    cfg.ncs_max_prng_steps = ncs_steps;
    cfg.seed = args.seed;
    std::vector<std::string> row{std::to_string(t)};
    if (args.locks.empty()) {
      for_each_lock_type<PaperFigureLockTags>([&](auto tag) {
        using L = typename decltype(tag)::type;
        row.push_back(Table::fmt(mutexbench_median<L>(cfg, args.runs)));
      });
    } else {
      for (const auto& name : args.locks) {
        row.push_back(named_cell(name, cfg, args.runs));
      }
    }
    table.add_row(std::move(row));
  }

  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\n(Y values: aggregate throughput, M steps/sec — the "
               "paper's figure axis.)\n";
}

}  // namespace hemlock::bench
