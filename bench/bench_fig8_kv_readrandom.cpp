// bench_fig8_kv_readrandom — reproduces Figure 8 on MiniKV (the
// LevelDB 1.20 substitute; DESIGN.md substitution table).
//
// Paper §5.4 protocol: populate with fillseq, then run readrandom
// with T threads for a fixed duration and report aggregate Mops/sec
// (median of 5 runs). "LevelDB uses coarse-grained locking,
// protecting the database with a single central mutex ... Ticket
// Locks exhibit a slight advantage over MCS, CLH and Hemlock at low
// thread counts after which Ticket Locks fade."
//
// --profile additionally reproduces the §5.4 instrumented-Hemlock
// characterization (locks held, nested acquires, Grant multi-waiting)
// on the Hemlock run.
//
// Flags: --duration-ms --runs --max-threads --oversubscribe --csv
//        --json=<path> --keys --profile --lock=<name>[,...] (factory
//        algorithms as the central mutex, via the runtime AnyLock path)
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>

#include "api/any_lock.hpp"
#include "bench_common.hpp"
#include "minikv/db.hpp"
#include "minikv/db_bench.hpp"
#include "runtime/thread_rec.hpp"
#include "stats/lock_profiler.hpp"

namespace {

using namespace hemlock;
using namespace hemlock::bench;

std::uint64_t g_fill_keys = 200000;

template <typename L>
double kv_median(std::uint32_t threads, std::int64_t duration_ms,
                 std::uint64_t keys, int runs) {
  // A fresh DB per algorithm, populated once (the paper populates the
  // on-disk DB once and reuses it; our tables are immutable after
  // fillseq, so per-algorithm reuse across thread counts is sound).
  // One full-key sweep warms the block cache: the paper's 50-second
  // windows amortize cold misses that our short windows cannot.
  static minikv::DB<L>* db = [] {
    auto* d = new minikv::DB<L>();
    minikv::fill_seq(*d, g_fill_keys, 100);
    std::string v;
    for (std::uint64_t k = 0; k < g_fill_keys; ++k) {
      (void)d->get(minikv::bench_key(k), &v);
    }
    return d;
  }();
  minikv::ReadRandomConfig cfg;
  cfg.threads = threads;
  cfg.duration_ms = duration_ms;
  cfg.num_keys = keys;
  Summary s;
  for (int r = 0; r < runs; ++r) {
    s.add(minikv::run_readrandom(*db, cfg).mops_per_sec());
  }
  return s.median();
}

/// --lock path: same protocol with a factory-named central mutex
/// (one warmed DB<AnyLock> per algorithm, reused across the sweep).
double kv_median_named(const std::string& lock_name, std::uint32_t threads,
                       std::int64_t duration_ms, std::uint64_t keys,
                       int runs) {
  static std::map<std::string, std::unique_ptr<minikv::DB<AnyLock>>> dbs;
  auto it = dbs.find(lock_name);
  if (it == dbs.end()) {
    auto db = std::make_unique<minikv::DB<AnyLock>>(minikv::DbOptions{},
                                                    lock_name);
    minikv::fill_seq(*db, g_fill_keys, 100);
    std::string v;
    for (std::uint64_t k = 0; k < g_fill_keys; ++k) {
      (void)db->get(minikv::bench_key(k), &v);
    }
    it = dbs.emplace(lock_name, std::move(db)).first;
  }
  minikv::ReadRandomConfig cfg;
  cfg.threads = threads;
  cfg.duration_ms = duration_ms;
  cfg.num_keys = keys;
  Summary s;
  for (int r = 0; r < runs; ++r) {
    s.add(minikv::run_readrandom(*it->second, cfg).mops_per_sec());
  }
  return s.median();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const auto args = parse_figure_args(opts);
  const auto keys =
      static_cast<std::uint64_t>(opts.get_int("keys", 200000));
  g_fill_keys = keys;
  const bool profile = opts.has("profile");
  reject_unknown(opts);

  std::cout << "=== Figure 8: KV-store readrandom (MiniKV standing in for "
               "LevelDB 1.20) ===\n"
            << "(fillseq-populated, " << keys
            << " keys; coarse-grained central DB mutex; paper: 50s runs, "
               "median of 5)\n"
            << host_banner() << "\n"
            << "duration=" << args.duration_ms << "ms runs=" << args.runs
            << "\n\n";

  BenchSeries series;
  const auto headers = figure_lock_headers(args);
  series.locks.assign(headers.begin() + 1, headers.end());

  for (const std::uint32_t t : figure_thread_sweep(args.max_threads)) {
    series.threads.push_back(t);
    std::vector<std::optional<double>> row;
    if (args.locks.empty()) {
      for_each_lock_type<PaperFigureLockTags>([&](auto tag) {
        using L = typename decltype(tag)::type;
        row.emplace_back(kv_median<L>(t, args.duration_ms, keys, args.runs));
      });
    } else {
      for (const auto& name : args.locks) {
        row.push_back(guarded_value(name, t, [&] {
          return kv_median_named(name, t, args.duration_ms, keys, args.runs);
        }));
      }
    }
    series.values.push_back(std::move(row));
  }
  render_series("fig8", "mops_per_sec", args, series);
  std::cout << "\n(Y values: millions of reads per second — Figure 8's "
               "axis.)\n";

  if (profile) {
    // §5.4 characterization: instrumented Hemlock on the same
    // workload at the highest thread count.
    std::cout << "\n--- instrumented-Hemlock characterization (§5.4) ---\n";
    ThreadRegistry::reset_profile();
    LockProfiler::enable(true);
    minikv::DB<Hemlock> db;
    minikv::fill_seq(db, keys, 100);
    minikv::ReadRandomConfig cfg;
    cfg.threads = args.max_threads;
    cfg.duration_ms = args.duration_ms;
    cfg.num_keys = keys;
    (void)minikv::run_readrandom(db, cfg);
    LockProfiler::enable(false);
    std::cout << collect_lock_usage_profile().describe()
              << "(paper, LevelDB at 64 threads: 24 nested acquires — all "
                 "during startup —, max 2 locks held, max 1 Grant waiter "
                 "=> purely local spinning)\n";
    ThreadRegistry::reset_profile();
  }
  return 0;
}
